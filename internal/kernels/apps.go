package kernels

import "gpa"

// The four larger applications of Section 7.

func init() {
	registerQuicksilver()
	registerExaTENSOR()
	registerPeleC()
	registerMinimod()
	registerMyocyteSplit()
}

// Quicksilver: one large Monte Carlo tracking kernel invoking many
// device functions.
func registerQuicksilver() {
	// Row 20: function inlining. The cross-section helpers are tiny but
	// called per segment; calls block scheduling across the boundary.
	baseAsm := func() string {
		b := newAsm("CycleTracking.cc")
		b.fn("_ZN12macro_xs", "device")
		b.at(410)
		b.ins("FFMA R20, R20, R21, R20 {S:4}")
		b.ffmaChain(4, 20)
		b.ins("RET {S:2}")
		b.fn("_ZN12collision_event", "device")
		b.at(520)
		b.ins("FFMA R28, R28, R29, R28 {S:4}")
		b.ffmaChain(3, 24)
		b.ins("RET {S:2}")
		b.fn("CycleTrackingKernel", "global")
		b.loopPrologue(95)
		b.label("LOOP").at(100)
		b.ins("LDG.E.32 R16, [R2] {S:1, W:0}")
		b.at(101)
		b.ins("CAL _ZN12macro_xs {S:2}")
		b.at(102)
		b.ins("CAL _ZN12collision_event {S:2}")
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", 104)
		b.ins("STG.E.32 [R2], R20 {S:1, R:1, Q:0}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	optAsm := func() string {
		b := newAsm("CycleTracking.cc")
		b.fn("CycleTrackingKernel", "global")
		b.loopPrologue(95)
		b.label("LOOP").at(100)
		b.ins("LDG.E.32 R16, [R2] {S:1, W:0}")
		b.at(101)
		b.ins("FFMA R20, R20, R21, R20 {S:4}")
		b.ffmaChain(4, 20)
		b.at(102)
		b.ins("FFMA R28, R28, R29, R28 {S:4}")
		b.ffmaChain(3, 24)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", 104)
		b.ins("STG.E.32 [R2], R20 {S:1, R:1, Q:0}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "CycleTrackingKernel", Label: "BR0"}: gpa.UniformTrips(48),
		}}
	}
	register(&Benchmark{
		App: "Quicksilver", Kernel: "CycleTrackingKernel",
		Optimization: "Function Inlining", Optimizer: "GPUFunctionInlineOptimizer",
		PaperAchieved: 1.12, PaperEstimated: 1.18,
		Base: Variant{Asm: baseAsm(), Launch: fullLaunch("CycleTrackingKernel"), Spec: spec()},
		Opt:  Variant{Asm: optAsm(), Launch: fullLaunch("CycleTrackingKernel"), Spec: spec()},
	})

	// Row 21: register reuse. The tracking loop spills particle state
	// to local memory; splitting the loop saves the registers.
	spillAsm := func(spill bool) string {
		b := newAsm("CycleTracking.cc")
		b.fn("CycleTrackingKernel", "global")
		b.loopPrologue(140)
		b.label("LOOP").at(145)
		b.ins("LDG.E.32 R16, [R2] {S:1, W:0}")
		b.ins("FFMA R20, R20, R21, R20 {S:4}")
		if spill {
			b.at(147)
			b.ins("STL.32 [R3], R20 {S:1, R:2}")
			b.ffmaChain(30, 20)
			b.at(149)
			b.ins("LDL.32 R21, [R3] {S:1, W:3, Q:2}")
			b.ins("FFMA R22, R21, R22, R22 {S:4, Q:3}")
		} else {
			b.ffmaChain(30, 20)
			b.at(149)
			b.ins("FFMA R22, R20, R22, R22 {S:4}")
		}
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", 151)
		b.ins("STG.E.32 [R2], R22 {S:1, R:1, Q:0}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	register(&Benchmark{
		App: "Quicksilver", Kernel: "CycleTrackingKernel",
		Optimization: "Register Reuse", Optimizer: "GPURegisterReuseOptimizer",
		PaperAchieved: 1.03, PaperEstimated: 1.04,
		Base: Variant{Asm: spillAsm(true), Launch: fullLaunch("CycleTrackingKernel"), Spec: spec()},
		Opt:  Variant{Asm: spillAsm(false), Launch: fullLaunch("CycleTrackingKernel"), Spec: spec()},
	})
}

// ExaTENSOR: tensor transpose kernel (Section 7.1 / Figure 8).
func registerExaTENSOR() {
	// Row 22: strength reduction — integer division in the index
	// permutation arithmetic.
	base, opt := strengthPair(strengthParams{
		file: "cuda2.cu", kernel: "tensor_transpose",
		loopLine: 34, trips: 24,
		launch:  fullLaunch("tensor_transpose"),
		useIDIV: true,
	})
	register(&Benchmark{
		App: "ExaTENSOR", Kernel: "tensor_transpose",
		Optimization: "Strength Reduction", Optimizer: "GPUStrengthReductionOptimizer",
		PaperAchieved: 1.07, PaperEstimated: 1.06,
		Base: base, Opt: opt,
	})

	// Row 23: memory transaction reduction — the permutation table is
	// read from global memory by every thread (32 transactions per
	// request); constant memory serves it broadcast.
	mtAsm := func(useConst bool) string {
		b := newAsm("cuda2.cu")
		b.fn("tensor_transpose", "global")
		b.loopPrologue(27)
		b.label("LOOP").at(30)
		if useConst {
			b.ins("LDC.32 R8, c[0x3][0x40] {S:1, W:0}")
		} else {
			b.label("PERM")
			b.ins("LDG.E.32 R8, [R4] {S:1, W:0}")
		}
		b.ins("LDG.E.32 R9, [R2] {S:1, W:1}")
		b.at(34)
		b.ins("IMAD R10, R8, R9, R10 {S:4, Q:0|1}")
		b.ffmaChain(40, 16)
		b.ins("IADD R2, R2, 0x4 {S:4}")
		b.loopEpilogue("LOOP", "BR0", 36)
		b.ins("STG.E.32 [R2], R10 {S:1, R:1}")
		b.ins("EXIT {Q:1}")
		return b.String()
	}
	spec := func(uncoalesced bool) *gpa.WorkloadSpec {
		s := &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "tensor_transpose", Label: "BR0"}: gpa.UniformTrips(32),
		}}
		if uncoalesced {
			s.Transactions = map[gpa.Site]int{
				{Func: "tensor_transpose", Label: "PERM"}: 2,
			}
		}
		return s
	}
	register(&Benchmark{
		App: "ExaTENSOR", Kernel: "tensor_transpose",
		Optimization:  "Memory Transaction Reduction",
		Optimizer:     "GPUMemoryTransactionReductionOptimizer",
		PaperAchieved: 1.03, PaperEstimated: 1.05,
		Base: Variant{Asm: mtAsm(false), Spec: spec(true),
			Launch: gpa.Launch{Entry: "tensor_transpose", GridX: 640, BlockX: 256, RegsPerThread: 64}},
		Opt: Variant{Asm: mtAsm(true), Spec: spec(false),
			Launch: gpa.Launch{Entry: "tensor_transpose", GridX: 640, BlockX: 256, RegsPerThread: 64}},
	})
}

// PeleC: reacting-flow kernel with only 16 resident blocks.
func registerPeleC() {
	asm := memComputeAsm(memComputeParams{
		file: "PeleC_reactions.cpp", kernel: "pc_expl_reactions",
		loopLine: 210, loads: 3, computes: 90,
	})
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "pc_expl_reactions", Label: "BR0"}: gpa.UniformTrips(40),
		}}
	}
	register(&Benchmark{
		App: "PeleC", Kernel: "pc_expl_reactions",
		Optimization: "Block Increase", Optimizer: "GPUBlockIncreaseOptimizer",
		PaperAchieved: 1.19, PaperEstimated: 1.23,
		Base: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "pc_expl_reactions", GridX: 16, BlockX: 1024, RegsPerThread: 32}},
		Opt: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "pc_expl_reactions", GridX: 32, BlockX: 512, RegsPerThread: 32}},
	})
}

// Minimod: higher-order stencil (target_pml_3d).
func registerMinimod() {
	// Row 25: fast math — a short precise-math call per point.
	base, opt := fastMathPair(fastMathParams{
		file: "minimod_pml.cu", kernel: "target_pml_3d", mathFn: "__internal_accurate_exp",
		loopLine: 77, trips: 40, chain: 1, extra: 48,
		launch: fullLaunch("target_pml_3d"),
	})
	register(&Benchmark{
		App: "Minimod", Kernel: "target_pml_3d",
		Optimization: "Fast Math", Optimizer: "GPUFastMathOptimizer",
		PaperAchieved: 1.03, PaperEstimated: 1.09,
		Base: base, Opt: opt,
	})

	// Row 26: code reordering — stencil loads hoisted ahead of the
	// accumulation.
	base2, opt2 := reorderPair(reorderParams{
		file: "minimod_pml.cu", kernel: "target_pml_3d",
		loopLine: 83, trips: 40,
		launch:      fullLaunch("target_pml_3d"),
		independent: 4,
	})
	register(&Benchmark{
		App: "Minimod", Kernel: "target_pml_3d",
		Optimization: "Code Reorder", Optimizer: "GPUCodeReorderOptimizer",
		PaperAchieved: 1.05, PaperEstimated: 1.10,
		Base: base2, Opt: opt2,
	})
}

// registerMyocyteSplit adds the myocyte rows: solver_2 is a single
// enormous kernel whose loop body overflows the instruction cache, and
// it leans on precise math.
func registerMyocyteSplit() {
	// Row 13: fast math.
	base, opt := fastMathPair(fastMathParams{
		file: "myocyte_kernel.cu", kernel: "solver_2", mathFn: "__internal_accurate_pow",
		loopLine: 40, trips: 36, chain: 4, extra: 16,
		launch: fullLaunch("solver_2"),
	})
	register(&Benchmark{
		App: "rodinia/myocyte", Kernel: "solver_2",
		Optimization: "Fast Math", Optimizer: "GPUFastMathOptimizer",
		PaperAchieved: 1.19, PaperEstimated: 1.13, Rodinia: true,
		Base: base, Opt: opt,
	})

	// Row 14: function split. The baseline's loop body spans ~26
	// instruction-cache lines, so the back edge misses every iteration;
	// the optimized variant splits the body into three loops that each
	// fit.
	const bodyOps = 840
	baseAsm := func() string {
		b := newAsm("myocyte_kernel.cu")
		b.fn("solver_2", "global")
		b.loopPrologue(60)
		b.label("LOOP").at(64)
		b.ffmaChain(bodyOps, 8)
		b.loopEpilogue("LOOP", "BR0", 66)
		b.ins("EXIT")
		return b.String()
	}
	optAsm := func() string {
		b := newAsm("myocyte_kernel.cu")
		b.fn("solver_2", "global")
		b.loopPrologue(60)
		for part := 0; part < 3; part++ {
			b.ins("MOV R0, 0x0 {S:2}")
			b.label(lbl("LOOP", part)).at(64 + part)
			b.ffmaChain(bodyOps/3, 8)
			b.at(66 + part)
			b.ins("IADD R0, R0, 0x1 {S:4}")
			b.ins("ISETP P0, R0, 0x7fffff {S:4}")
			b.ins(lbl("BR", part) + ":\t@P0 BRA " + lbl("LOOP", part) + " {S:5}")
		}
		b.ins("EXIT")
		return b.String()
	}
	// Slightly different per-warp trip counts drift warps apart so the
	// oversized body exercises the instruction cache the way myocyte's
	// divergent mega-kernel does.
	trips := gpa.UniformTrips(12)
	baseSpec := &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
		{Func: "solver_2", Label: "BR0"}: trips,
	}}
	optSpec := &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
		{Func: "solver_2", Label: "BR0"}: trips,
		{Func: "solver_2", Label: "BR1"}: trips,
		{Func: "solver_2", Label: "BR2"}: trips,
	}}
	register(&Benchmark{
		App: "rodinia/myocyte", Kernel: "solver_2",
		Optimization: "Function Spliting", Optimizer: "GPUFunctionSplitOptimizer",
		PaperAchieved: 1.02, PaperEstimated: 1.03, Rodinia: true,
		Base: Variant{Asm: baseAsm(), Launch: soloBlockLaunch("solver_2"), Spec: baseSpec},
		Opt:  Variant{Asm: optAsm(), Launch: soloBlockLaunch("solver_2"), Spec: optSpec},
	})
}

func lbl(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
