package kernels

import (
	"context"

	"gpa/internal/arch"
	"gpa/internal/blamer"

	adv "gpa/internal/advisor"
)

// Coverage computes the Figure 7 metric for a benchmark's baseline
// kernel: single-dependency coverage of the instruction dependency graph
// before and after pruning cold edges, weighted by each function's
// stalled-instruction count. A canceled ctx aborts the profiling run.
func Coverage(ctx context.Context, b *Benchmark, ro RunOptions) (before, after float64, err error) {
	k, wl, err := b.Base.Build()
	if err != nil {
		return 0, 0, err
	}
	opts := ro.options()
	opts.Workload = wl
	prof, err := k.Profile(ctx, opts)
	if err != nil {
		return 0, 0, err
	}
	gpu := ro.GPU
	if gpu == nil {
		gpu = arch.VoltaV100()
	}
	actx, err := adv.BuildContext(k.Module, prof, gpu, blamer.Options{})
	if err != nil {
		return 0, 0, err
	}
	var weight, sumB, sumA float64
	for _, fc := range actx.Funcs {
		w := float64(len(fc.Blame.UseNodes)) + 1
		weight += w
		sumB += fc.Blame.SingleDependencyCoverage(false) * w
		sumA += fc.Blame.SingleDependencyCoverage(true) * w
	}
	if weight == 0 {
		return 1, 1, nil
	}
	return sumB / weight, sumA / weight, nil
}
