package kernels

import "gpa"

// Rodinia benchmark rows of Table 3. Launch shapes keep full occupancy
// on the default V100 model (grid 640 = 8 resident blocks per SM on its
// 80 SMs; other architectures see the same grid through their own
// geometry) unless the row's inefficiency is occupancy itself; rows
// that need low resident warp counts without matching the parallel
// optimizers use register pressure as the occupancy limiter, as
// register-heavy Rodinia kernels do in reality.

// fullLaunch is the standard full-occupancy launch.
func fullLaunch(entry string) gpa.Launch {
	return gpa.Launch{Entry: entry, GridX: 640, BlockX: 256, RegsPerThread: 32}
}

// lowOccLaunch pins occupancy down via register pressure (limiter
// "registers", so the parallel optimizers do not match).
func lowOccLaunch(entry string) gpa.Launch {
	return gpa.Launch{Entry: entry, GridX: 640, BlockX: 256, RegsPerThread: 128}
}

// soloBlockLaunch leaves one resident block per SM (register limited):
// when that block's warps wait at a barrier, the schedulers idle.
func soloBlockLaunch(entry string) gpa.Launch {
	return gpa.Launch{Entry: entry, GridX: 640, BlockX: 256, RegsPerThread: 200}
}

func init() {
	registerBackprop()
	registerBFS()
	registerBTree()
	registerCFD()
	registerGaussian()
	registerHeartwall()
	registerHotspot()
	registerHuffman()
	registerKmeans()
	registerLavaMD()
	registerLUD()
	registerNW()
	registerParticlefilter()
	registerStreamcluster()
	registerSradV1()
	registerPathfinder()
}

func registerBackprop() {
	// Row 1: warp balance. The layer-forward kernel reduces across a
	// block; warps that own more input connections arrive late at the
	// barrier.
	base, opt := warpBalancePair(warpBalanceParams{
		file: "backprop_cuda_kernel.cu", kernel: "bpnn_layerforward_CUDA",
		loopLine: 61, barLine: 74,
		computeOps: 6,
		launch:     soloBlockLaunch("bpnn_layerforward_CUDA"),
		hiTrips:    95, loTrips: 62, hiWarpEvery: 4,
	})
	register(&Benchmark{
		App: "rodinia/backprop", Kernel: "bpnn_layerforward_CUDA",
		Optimization: "Warp Balance", Optimizer: "GPUWarpBalanceOptimizer",
		PaperAchieved: 1.18, PaperEstimated: 1.21, Rodinia: true,
		Base: base, Opt: opt,
	})
	// Row 2: strength reduction. Weight updates promote float
	// expressions to double because of untyped constants.
	base2, opt2 := strengthPair(strengthParams{
		file: "backprop_cuda_kernel.cu", kernel: "bpnn_layerforward_CUDA",
		loopLine: 68, trips: 40,
		launch: fullLaunch("bpnn_layerforward_CUDA"),
	})
	register(&Benchmark{
		App: "rodinia/backprop", Kernel: "bpnn_layerforward_CUDA",
		Optimization: "Strength Reduction", Optimizer: "GPUStrengthReductionOptimizer",
		PaperAchieved: 1.21, PaperEstimated: 1.13, Rodinia: true,
		Base: base2, Opt: opt2,
	})
}

func registerBFS() {
	// Loop unrolling with the paper's false-positive shape: the
	// frontier is highly imbalanced (most warps run under four
	// iterations), so unrolling benefits few threads and the estimate
	// overshoots. The optimized variant also pays a remainder guard for
	// the data-dependent bound.
	base, opt := unrollPair(unrollParams{
		file: "bfs_kernel.cu", kernel: "Kernel",
		loopLine: 20,
		launch:   fullLaunch("Kernel"),
		trips: func(w gpa.WarpCtx) int {
			if w.GlobalWarp%8 == 0 {
				return 320
			}
			return 40
		},
		factor: 2, remainder: true, compute: 10, chained: true, dualPath: true,
	})
	register(&Benchmark{
		App: "rodinia/bfs", Kernel: "Kernel",
		Optimization: "Loop Unrolling", Optimizer: "GPULoopUnrollOptimizer",
		PaperAchieved: 1.14, PaperEstimated: 1.59, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerBTree() {
	// Code reordering (Listing 2): the subscripted key loads sit right
	// before their comparison; reading the next node's keys early hides
	// the latency. Low occupancy makes in-warp distance matter.
	base, opt := reorderPair(reorderParams{
		file: "b+tree_kernel.cu", kernel: "findRangeK",
		loopLine: 14, trips: 48,
		launch:      lowOccLaunch("findRangeK"),
		independent: 8,
	})
	register(&Benchmark{
		App: "rodinia/b+tree", Kernel: "findRangeK",
		Optimization: "Code Reorder", Optimizer: "GPUCodeReorderOptimizer",
		PaperAchieved: 1.15, PaperEstimated: 1.28, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerCFD() {
	// Fast math: flux computation leans on precise double-precision
	// routines.
	base, opt := fastMathPair(fastMathParams{
		file: "euler3d.cu", kernel: "cuda_compute_flux", mathFn: "__internal_accurate_rsqrt",
		loopLine: 122, trips: 30, chain: 3, extra: 10,
		launch: fullLaunch("cuda_compute_flux"),
	})
	register(&Benchmark{
		App: "rodinia/cfd", Kernel: "cuda_compute_flux",
		Optimization: "Fast Math", Optimizer: "GPUFastMathOptimizer",
		PaperAchieved: 1.46, PaperEstimated: 1.54, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerGaussian() {
	// Thread increase: Fan2 launches one-warp blocks, capping resident
	// warps at the blocks-per-SM limit (half occupancy); larger blocks
	// restore latency hiding. Total threads are conserved.
	asm := memComputeAsm(memComputeParams{
		file: "gaussian.cu", kernel: "Fan2",
		loopLine: 31, loads: 1, computes: 1,
	})
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "Fan2", Label: "BR0"}: gpa.UniformTrips(48),
		}}
	}
	register(&Benchmark{
		App: "rodinia/gaussian", Kernel: "Fan2",
		Optimization: "Thread Increase", Optimizer: "GPUThreadIncreaseOptimizer",
		PaperAchieved: 3.86, PaperEstimated: 3.33, Rodinia: true,
		Base: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "Fan2", GridX: 5120, BlockX: 32, RegsPerThread: 32}},
		Opt: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "Fan2", GridX: 640, BlockX: 256, RegsPerThread: 32}},
	})
}

func registerHeartwall() {
	base, opt := unrollPair(unrollParams{
		file: "heartwall_kernel.cu", kernel: "kernel",
		loopLine: 320,
		launch:   lowOccLaunch("kernel"),
		trips:    gpa.UniformTrips(48),
		factor:   4, compute: 8, transactions: 3,
	})
	register(&Benchmark{
		App: "rodinia/heartwall", Kernel: "kernel",
		Optimization: "Loop Unrolling", Optimizer: "GPULoopUnrollOptimizer",
		PaperAchieved: 1.16, PaperEstimated: 1.15, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerHotspot() {
	// Strength reduction (Listing 1): the 2.0 constant promotes the
	// temperature update to double precision with conversions both
	// ways.
	base, opt := strengthPair(strengthParams{
		file: "hotspot.cu", kernel: "calculate_temp",
		loopLine: 2, trips: 32,
		launch: fullLaunch("calculate_temp"),
	})
	register(&Benchmark{
		App: "rodinia/hotspot", Kernel: "calculate_temp",
		Optimization: "Strength Reduction", Optimizer: "GPUStrengthReductionOptimizer",
		PaperAchieved: 1.15, PaperEstimated: 1.10, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerHuffman() {
	base, opt := warpBalancePair(warpBalanceParams{
		file: "vlc_kernel.cu", kernel: "vlc_encode_kernel_sm64huff",
		loopLine: 88, barLine: 105,
		computeOps: 8,
		launch:     soloBlockLaunch("vlc_encode_kernel_sm64huff"),
		hiTrips:    82, loTrips: 66, hiWarpEvery: 4,
	})
	register(&Benchmark{
		App: "rodinia/huffman", Kernel: "vlc_encode_kernel_sm64huff",
		Optimization: "Warp Balance", Optimizer: "GPUWarpBalanceOptimizer",
		PaperAchieved: 1.10, PaperEstimated: 1.17, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerKmeans() {
	base, opt := unrollPair(unrollParams{
		file: "kmeans_cuda_kernel.cu", kernel: "kmeansPoint",
		loopLine: 50,
		launch:   lowOccLaunch("kmeansPoint"),
		trips:    gpa.UniformTrips(40),
		factor:   2, compute: 10, transactions: 3,
	})
	register(&Benchmark{
		App: "rodinia/kmeans", Kernel: "kmeansPoint",
		Optimization: "Loop Unrolling", Optimizer: "GPULoopUnrollOptimizer",
		PaperAchieved: 1.12, PaperEstimated: 1.21, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerLavaMD() {
	base, opt := unrollPair(unrollParams{
		file: "lavaMD_kernel.cu", kernel: "kernel_gpu_cuda",
		loopLine: 77,
		launch:   lowOccLaunch("kernel_gpu_cuda"),
		trips:    gpa.UniformTrips(48),
		factor:   4, compute: 12, transactions: 3,
	})
	register(&Benchmark{
		App: "rodinia/lavaMD", Kernel: "kernel_gpu_cuda",
		Optimization: "Loop Unrolling", Optimizer: "GPULoopUnrollOptimizer",
		PaperAchieved: 1.11, PaperEstimated: 1.12, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerLUD() {
	// lud_diagonal is register heavy and runs few warps; reordering the
	// shared/global loads ahead of independent work pays off strongly.
	base, opt := reorderPair(reorderParams{
		file: "lud_kernel.cu", kernel: "lud_diagonal",
		loopLine: 9, trips: 56,
		launch:      lowOccLaunch("lud_diagonal"),
		independent: 14,
	})
	register(&Benchmark{
		App: "rodinia/lud", Kernel: "lud_diagonal",
		Optimization: "Code Reorder", Optimizer: "GPUCodeReorderOptimizer",
		PaperAchieved: 1.36, PaperEstimated: 1.48, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerNW() {
	// nw: intricate control flow — the fully-unrolled scoring loop
	// compares four candidates computed on different predicated paths
	// before a barrier. The multi-path defs keep its single-dependency
	// coverage low even after pruning (Figure 7), and the imbalanced
	// barrier waits match warp balance.
	mk := func() string {
		b := newAsm("needle_kernel.cu")
		b.fn("needle_cuda_shared_1", "global")
		b.loopPrologue(110)
		b.label("LOOP").at(113)
		b.ins("LDS.32 R8, [R1] {S:1, W:0}")
		b.ins("ISETP P1, R8, 0x0 {S:4, Q:0}")
		// The candidate scores load through one of two predicated paths
		// (northwest vs west neighbour); the max chain below therefore
		// has two same-class dependency sources per register.
		b.ins("@P1 LDS.32 R10, [R1+0x100] {S:1, W:2}")
		b.ins("@!P1 LDS.32 R10, [R1+0x200] {S:1, W:2}")
		b.ins("@P1 LDS.32 R11, [R1+0x300] {S:1, W:3}")
		b.ins("@!P1 LDS.32 R11, [R1+0x400] {S:1, W:3}")
		b.at(118)
		// max of four candidates.
		b.ins("IMNMX R12, R10, R11, PT {S:4, Q:2|3}")
		b.ins("IMNMX R13, R12, R14, PT {S:4}")
		b.ins("IMNMX R14, R13, R15, PT {S:4}")
		b.ins("STS.32 [R1], R14 {S:1, R:1}")
		b.at(121)
		b.ins("BAR.SYNC {S:2, Q:1}")
		b.loopEpilogue("LOOP", "BR0", 123)
		b.ins("EXIT")
		return b.String()
	}
	site := gpa.Site{Func: "needle_cuda_shared_1", Label: "BR0"}
	base := Variant{Asm: mk(), Launch: soloBlockLaunch("needle_cuda_shared_1"),
		Spec: &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			site: func(w gpa.WarpCtx) int {
				// The wavefront sweep gives edge warps less work.
				if w.WarpInBlock%4 == 0 {
					return 72
				}
				return 56
			},
		}},
	}
	opt := Variant{Asm: mk(), Launch: soloBlockLaunch("needle_cuda_shared_1"),
		Spec: &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			site: gpa.UniformTrips(60),
		}},
	}
	register(&Benchmark{
		App: "rodinia/nw", Kernel: "needle_cuda_shared_1",
		Optimization: "Warp Balance", Optimizer: "GPUWarpBalanceOptimizer",
		PaperAchieved: 1.10, PaperEstimated: 1.09, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerParticlefilter() {
	// Block increase: 16 compute-dense blocks leave 64 SMs idle;
	// doubling the block count (halving block size) nearly doubles
	// throughput.
	asm := memComputeAsm(memComputeParams{
		file: "ex_particle_CUDA_naive_seq.cu", kernel: "likelihood_kernel",
		loopLine: 66, loads: 0, computes: 200,
	})
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "likelihood_kernel", Label: "BR0"}: gpa.UniformTrips(40),
		}}
	}
	register(&Benchmark{
		App: "rodinia/particlefilter", Kernel: "likelihood_kernel",
		Optimization: "Block Increase", Optimizer: "GPUBlockIncreaseOptimizer",
		PaperAchieved: 1.92, PaperEstimated: 1.93, Rodinia: true,
		Base: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "likelihood_kernel", GridX: 16, BlockX: 512, RegsPerThread: 32}},
		Opt: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "likelihood_kernel", GridX: 32, BlockX: 256, RegsPerThread: 32}},
	})
}

func registerStreamcluster() {
	asm := memComputeAsm(memComputeParams{
		file: "streamcluster_cuda.cu", kernel: "kernel_compute_cost",
		loopLine: 90, loads: 1, computes: 560,
	})
	spec := func() *gpa.WorkloadSpec {
		return &gpa.WorkloadSpec{Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "kernel_compute_cost", Label: "BR0"}: gpa.UniformTrips(14),
		}}
	}
	register(&Benchmark{
		App: "rodinia/streamcluster", Kernel: "kernel_compute_cost",
		Optimization: "Block Increase", Optimizer: "GPUBlockIncreaseOptimizer",
		PaperAchieved: 1.52, PaperEstimated: 1.46, Rodinia: true,
		Base: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "kernel_compute_cost", GridX: 40, BlockX: 512, RegsPerThread: 32}},
		Opt: Variant{Asm: asm, Spec: spec(),
			Launch: gpa.Launch{Entry: "kernel_compute_cost", GridX: 80, BlockX: 256, RegsPerThread: 32}},
	})
}

func registerSradV1() {
	base, opt := warpBalancePair(warpBalanceParams{
		file: "srad_kernel.cu", kernel: "reduce",
		loopLine: 40, barLine: 52,
		computeOps: 10,
		launch:     soloBlockLaunch("reduce"),
		hiTrips:    66, loTrips: 58, hiWarpEvery: 4,
	})
	register(&Benchmark{
		App: "rodinia/sradv1", Kernel: "reduce",
		Optimization: "Warp Balance", Optimizer: "GPUWarpBalanceOptimizer",
		PaperAchieved: 1.03, PaperEstimated: 1.16, Rodinia: true,
		Base: base, Opt: opt,
	})
}

func registerPathfinder() {
	// Code reordering with the paper's false-positive shape: the
	// barrier between the load and its consumers pins the reachable
	// distance, so the achieved speedup lags the estimate.
	base, opt := reorderPair(reorderParams{
		file: "pathfinder.cu", kernel: "dynproc_kernel",
		loopLine: 120, trips: 48,
		launch:      lowOccLaunch("dynproc_kernel"),
		independent: 8,
		barrier:     true,
	})
	register(&Benchmark{
		App: "rodinia/pathfinder", Kernel: "dynproc_kernel",
		Optimization: "Code Reorder", Optimizer: "GPUCodeReorderOptimizer",
		PaperAchieved: 1.05, PaperEstimated: 1.23, Rodinia: true,
		Base: base, Opt: opt,
	})
}
