// Package kernels provides the benchmark workloads of the GPA paper's
// evaluation (Table 3): synthetic SASS kernels standing in for the
// Rodinia benchmarks and the four larger applications (Quicksilver,
// ExaTENSOR, PeleC, Minimod). Each benchmark row carries
//
//   - a BASELINE kernel engineered to exhibit the paper's inefficiency
//     pattern for that row (type-conversion chains in hotspot, barrier
//     imbalance in nw, short def-use distances in b+tree, low occupancy
//     in gaussian, ...),
//   - an OPTIMIZED variant with the row's suggested optimization
//     applied, and
//   - the paper's reported achieved/estimated speedups for comparison.
//
// The kernels are synthetic: the real applications' data and CUDA code
// cannot run without a GPU, but each pair triggers the same stall
// signature through the same simulator mechanics, so optimizer matching,
// speedup estimation, and achieved-speedup measurement run end to end
// (see DESIGN.md, "Substitutions").
//
// The rows drive the whole Figure 2 pipeline: Benchmark.Run measures
// baseline and optimized variants and extracts the advisor's estimate,
// producing the Achieved/Estimated/Error columns of Table 3.
// RunOptions.GPU selects the architecture model the row runs on — the
// paper's V100 by default, or any registered model for cross-arch
// sweeps (the kernels assemble as sm_70 modules; the launch shapes were
// tuned on V100 geometry but run on every model whose limits they fit).
// RunOptions.Engine routes the row's measurements through a shared
// gpa.Engine — one machine-wide worker pool with a content-addressed
// cache — instead of per-row goroutines; results are identical either
// way.
package kernels

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"gpa"
	"gpa/internal/arch"
	"gpa/internal/par"
)

// Variant is one concrete kernel build: assembly, launch configuration,
// and workload behaviour.
type Variant struct {
	Asm    string
	Launch gpa.Launch
	Spec   *gpa.WorkloadSpec
}

// builtVariant memoizes one variant's front-end build; the once makes
// concurrent first builders race-free without holding buildMu across
// assembly.
type builtVariant struct {
	once sync.Once
	k    *gpa.Kernel
	wl   gpa.Workload
	err  error
}

// buildKey identifies a variant by content: the same assembly, launch
// shape, and spec binding always produce the same kernel, so sharing
// one build across equal variants is observationally free.
type buildKey struct {
	asm    string
	launch gpa.Launch
	spec   *gpa.WorkloadSpec
}

var (
	buildMu    sync.Mutex
	buildCache = map[buildKey]*builtVariant{}
)

// Build assembles the variant and binds its workload. The whole
// front-end — assembly, module flattening, workload binding, and the
// kernel's lazily memoized program/structure — is
// architecture-independent, so it runs once per distinct variant and
// every caller shares the result: a cross-architecture sweep builds
// each kernel once, not once per model. The returned kernel and
// workload are safe for concurrent use and must be treated as
// read-only.
func (v *Variant) Build() (*gpa.Kernel, gpa.Workload, error) {
	key := buildKey{asm: v.Asm, launch: v.Launch, spec: v.Spec}
	buildMu.Lock()
	b := buildCache[key]
	if b == nil {
		b = &builtVariant{}
		buildCache[key] = b
	}
	buildMu.Unlock()
	b.once.Do(func() {
		k, err := gpa.LoadKernelAsm(v.Asm, v.Launch)
		if err != nil {
			b.err = err
			return
		}
		if v.Spec != nil {
			wl, err := k.BindWorkload(v.Spec)
			if err != nil {
				b.err = err
				return
			}
			b.wl = wl
		}
		b.k = k
	})
	return b.k, b.wl, b.err
}

// Benchmark is one Table 3 row.
type Benchmark struct {
	// App and Kernel name the row ("rodinia/hotspot",
	// "calculate_temp").
	App    string
	Kernel string
	// Optimization is the row's label ("Strength Reduction").
	Optimization string
	// Optimizer is the advisor optimizer expected to match
	// ("GPUStrengthReductionOptimizer").
	Optimizer string
	// PaperAchieved / PaperEstimated are the speedups Table 3 reports.
	PaperAchieved  float64
	PaperEstimated float64
	// Rodinia marks the rows included in the Figure 7 coverage plot.
	Rodinia bool

	Base, Opt Variant
}

// ID renders "app/kernel/optimization" for lookups.
func (b *Benchmark) ID() string {
	return fmt.Sprintf("%s %s %s", b.App, b.Kernel, b.Optimization)
}

// Outcome is the measured reproduction of one row.
type Outcome struct {
	Bench *Benchmark
	// BaseCycles / OptCycles are simulated kernel durations.
	BaseCycles, OptCycles int64
	// Achieved is BaseCycles / OptCycles.
	Achieved float64
	// Estimated is the advisor's speedup estimate for the row's
	// optimizer on the baseline profile.
	Estimated float64
	// Rank is the optimizer's position in the advice report (1-based;
	// 0 = absent).
	Rank int
	// Error is |Estimated-Achieved|/Achieved (the Table 3 error
	// column).
	Error float64
	// Report is the baseline advice report.
	Report *gpa.Report
}

// RunOptions tunes a reproduction run.
type RunOptions struct {
	// GPU selects the architecture model the row runs on (nil = the
	// paper's V100). Every measurement and the advice report use the
	// same model.
	GPU          *arch.GPU
	SimSMs       int
	SamplePeriod int
	Seed         uint64
	// Parallel runs the row's three measurements (baseline measure,
	// optimized measure, baseline advise) concurrently. Results are
	// identical to the sequential order.
	Parallel bool
	// Parallelism bounds concurrent SM simulation inside each
	// measurement. Unlike gpa.Options, the zero value means 1
	// (sequential SMs): the harness layers its own row- and
	// measurement-level concurrency on top, and nesting a
	// GOMAXPROCS-wide SM pool under those would oversubscribe the
	// machine and make "sequential" timings dishonest.
	Parallelism int
	// Engine routes the row's measurements through a shared scheduler
	// with content-addressed caching (gpa.NewEngine) instead of ad-hoc
	// goroutines, so a whole-table sweep funnels every simulation
	// through one machine-wide worker pool and repeated rows hit the
	// cache. Takes precedence over Parallel. Results are identical on
	// every path.
	Engine *gpa.Engine
}

func (o RunOptions) options() *gpa.Options {
	simSMs := o.SimSMs
	if simSMs == 0 {
		simSMs = 1
	}
	parallelism := o.Parallelism
	if parallelism == 0 {
		parallelism = 1
	}
	return &gpa.Options{
		GPU:    o.GPU,
		SimSMs: simSMs, SamplePeriod: o.SamplePeriod, Seed: o.Seed,
		Parallelism: parallelism,
	}
}

// Run measures the baseline and optimized variants and extracts the
// advisor's estimate for the expected optimizer. A canceled ctx aborts
// whichever of the row's three measurements are still running and
// returns an error wrapping gpa.ErrCanceled.
func (b *Benchmark) Run(ctx context.Context, ro RunOptions) (*Outcome, error) {
	opts := ro.options()
	baseK, baseWL, err := b.Base.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: base: %w", b.ID(), err)
	}
	optK, optWL, err := b.Opt.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: opt: %w", b.ID(), err)
	}
	baseOpts := *opts
	baseOpts.Workload = baseWL
	optOpts := *opts
	optOpts.Workload = optWL

	var baseCycles, optCycles int64
	var report *gpa.Report
	if ro.Engine != nil {
		// Shared-scheduler path: the three measurements become engine
		// jobs, bounded by the engine's machine-wide worker pool and
		// deduplicated by its content-addressed cache. The workload
		// keys name each variant's Spec binding stably (the Spec is
		// deterministic per benchmark definition), which is what makes
		// the jobs cacheable at all.
		results := ro.Engine.DoAll(ctx, []gpa.Job{
			{Kind: gpa.JobMeasure, Kernel: baseK, Options: &baseOpts, WorkloadKey: b.ID() + "/base"},
			{Kind: gpa.JobMeasure, Kernel: optK, Options: &optOpts, WorkloadKey: b.ID() + "/opt"},
			{Kind: gpa.JobAdvise, Kernel: baseK, Options: &baseOpts, WorkloadKey: b.ID() + "/base"},
		})
		for i, step := range []string{"base measure", "opt measure", "advise"} {
			if err := results[i].Err; err != nil {
				return nil, fmt.Errorf("%s: %s: %w", b.ID(), step, err)
			}
		}
		baseCycles, optCycles = results[0].Cycles, results[1].Cycles
		report = results[2].Report
		return b.outcome(baseCycles, optCycles, report), nil
	}
	measureBase := func() error {
		c, err := baseK.Measure(ctx, &baseOpts)
		if err != nil {
			return fmt.Errorf("%s: base measure: %w", b.ID(), err)
		}
		baseCycles = c
		return nil
	}
	measureOpt := func() error {
		c, err := optK.Measure(ctx, &optOpts)
		if err != nil {
			return fmt.Errorf("%s: opt measure: %w", b.ID(), err)
		}
		optCycles = c
		return nil
	}
	advise := func() error {
		r, err := baseK.Advise(ctx, &baseOpts)
		if err != nil {
			return fmt.Errorf("%s: advise: %w", b.ID(), err)
		}
		report = r
		return nil
	}
	steps := []func() error{measureBase, measureOpt, advise}
	if ro.Parallel {
		errs := make([]error, len(steps))
		par.Do(len(steps), len(steps), func(i int) { errs[i] = steps[i]() })
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Sequential mode short-circuits on the first failure (a failing
		// measurement can be a full MaxCycles simulation; don't repeat
		// it twice more).
		for _, step := range steps {
			if err := step(); err != nil {
				return nil, err
			}
		}
	}
	return b.outcome(baseCycles, optCycles, report), nil
}

// outcome assembles the row's Outcome from its three measurements.
func (b *Benchmark) outcome(baseCycles, optCycles int64, report *gpa.Report) *Outcome {
	out := &Outcome{
		Bench:      b,
		BaseCycles: baseCycles,
		OptCycles:  optCycles,
		Achieved:   float64(baseCycles) / float64(optCycles),
		Report:     report,
	}
	for i, e := range report.Advice.Entries {
		if e.Optimizer == b.Optimizer {
			out.Estimated = e.Speedup
			out.Rank = i + 1
			break
		}
	}
	if out.Achieved > 0 && out.Estimated > 0 {
		out.Error = math.Abs(out.Estimated-out.Achieved) / out.Achieved
	}
	return out
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns every Table 3 benchmark in table order.
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	return out
}

// Rodinia returns the rows included in Figure 7.
func Rodinia() []*Benchmark {
	var out []*Benchmark
	seen := map[string]bool{}
	for _, b := range registry {
		if b.Rodinia && !seen[b.App] {
			seen[b.App] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Find locates a benchmark by app (and optional kernel/optimization
// substrings).
func Find(app string) []*Benchmark {
	var out []*Benchmark
	for _, b := range registry {
		if b.App == app {
			out = append(out, b)
		}
	}
	return out
}

// GeoMean computes the geometric mean of a slice of positive ratios.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
