package kernels

import (
	"context"
	"testing"

	"gpa"
	"gpa/internal/gpusim"
)

// TestSteadyFastForwardFiresOnCorpus pins that the steady-state
// memoizer is live on the evaluation corpus, not just on synthetic
// oracle kernels: measuring the nw baseline (a barrier-synchronized
// wavefront loop, periodic at the SM level) must detect a period and
// skip cycles. The FF counters are process-wide (gpusim.FFStats), so
// the test asserts on deltas around the run.
func TestSteadyFastForwardFiresOnCorpus(t *testing.T) {
	rows := Find("rodinia/nw")
	if len(rows) == 0 {
		t.Fatal("no rodinia/nw row")
	}
	k, wl, err := rows[0].Base.Build()
	if err != nil {
		t.Fatal(err)
	}
	p0, c0, _ := gpusim.FFStats()
	cycles, err := k.Measure(context.Background(), &gpa.Options{
		Workload: wl, Seed: 11, SimSMs: 4, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p1, c1, _ := gpusim.FFStats()
	if p1-p0 <= 0 || c1-c0 <= 0 {
		t.Errorf("fast-forward did not fire on rodinia/nw: periods=%d cyclesSkipped=%d",
			p1-p0, c1-c0)
	}
	if skipped := c1 - c0; skipped >= cycles*4 {
		t.Errorf("skipped %d cycles but 4 SMs only simulate %d total", skipped, cycles*4)
	}
}
