package kernels

import (
	"context"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("registry has %d rows, want 26 (Table 3)", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.ID()] {
			t.Errorf("duplicate row %q", b.ID())
		}
		seen[b.ID()] = true
		if b.PaperAchieved <= 1 || b.PaperEstimated <= 1 {
			t.Errorf("%s: paper numbers missing", b.ID())
		}
		if b.Optimizer == "" {
			t.Errorf("%s: no expected optimizer", b.ID())
		}
	}
	rod := Rodinia()
	if len(rod) != 17 {
		t.Errorf("Rodinia() returned %d apps, want 17", len(rod))
	}
}

func TestAllVariantsBuild(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.ID(), func(t *testing.T) {
			if _, _, err := b.Base.Build(); err != nil {
				t.Fatalf("base: %v", err)
			}
			if _, _, err := b.Opt.Build(); err != nil {
				t.Fatalf("opt: %v", err)
			}
		})
	}
}

// TestTable3Shape is the core reproduction check: every row must (a)
// achieve a real speedup from the suggested optimization, and (b) have
// the expected optimizer present in the advice report with a meaningful
// estimate.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in short mode")
	}
	var achieved, estimated []float64
	for _, b := range All() {
		b := b
		t.Run(b.ID(), func(t *testing.T) {
			out, err := b.Run(context.Background(), RunOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-60s achieved %.3fx (paper %.2fx) estimated %.3fx (paper %.2fx) rank %d",
				b.ID(), out.Achieved, b.PaperAchieved, out.Estimated, b.PaperEstimated, out.Rank)
			if out.Achieved <= 1.0 {
				t.Errorf("optimized variant is not faster: %.3fx", out.Achieved)
			}
			if out.Rank == 0 {
				t.Errorf("expected optimizer %s absent from the report", b.Optimizer)
			} else if out.Rank > 6 {
				t.Errorf("expected optimizer %s ranked %d (want top 6)", b.Optimizer, out.Rank)
			}
			if out.Estimated <= 1.0 && out.Rank > 0 {
				t.Errorf("estimator predicts no speedup (%.3fx)", out.Estimated)
			}
			achieved = append(achieved, out.Achieved)
			estimated = append(estimated, out.Estimated)
		})
	}
	if len(achieved) == len(All()) {
		t.Logf("geomean achieved %.3fx (paper 1.22x), estimated %.3fx (paper 1.26x)",
			GeoMean(achieved), GeoMean(estimated))
	}
}

// TestFigure7Shape: after pruning, single-dependency coverage exceeds
// 0.8 for most Rodinia benchmarks, with bfs and nw as the low outliers,
// and pruning never lowers coverage.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep in short mode")
	}
	for _, b := range Rodinia() {
		b := b
		t.Run(b.App, func(t *testing.T) {
			before, after, err := Coverage(context.Background(), b, RunOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-24s coverage before %.3f after %.3f", b.App, before, after)
			if after < before-1e-9 {
				t.Errorf("pruning lowered coverage: %.3f -> %.3f", before, after)
			}
			switch b.App {
			case "rodinia/bfs", "rodinia/nw":
				// The paper's outliers stay below the others.
			default:
				if after < 0.75 {
					t.Errorf("coverage after pruning %.3f, want >= 0.75", after)
				}
			}
		})
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if got < 1.999 || got > 2.001 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("GeoMean(nil) = %v", GeoMean(nil))
	}
}
