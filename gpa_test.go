package gpa_test

import (
	"context"
	"strings"
	"testing"

	"gpa"
)

const apiKernelSrc = `
.module sm_70
.func vecscale global
.line vecscale.cu 5
	MOV R0, 0x0 {S:2}
	S2R R1, SR_TID.X {S:2, W:5}
	IMAD R2, R1, 0x4, RZ {S:4, Q:5}
	IADD R2, R2, c[0x0][0x160] {S:2}
LOOP:
.line vecscale.cu 7
	LDG.E.32 R4, [R2] {S:1, W:0}
.line vecscale.cu 8
	FMUL R5, R4, 2f {S:4, Q:0}
	IADD R2, R2, 0x4 {S:4}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x40 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	STG.E.32 [R2], R5 {S:1, R:1}
	EXIT {Q:1}
`

func apiKernel(t *testing.T) (*gpa.Kernel, *gpa.Options) {
	t.Helper()
	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{
		Entry: "vecscale", GridX: 160, BlockX: 256, RegsPerThread: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := k.BindWorkload(&gpa.WorkloadSpec{
		Trips: map[gpa.Site]gpa.TripFunc{
			{Func: "vecscale", Label: "BR0"}: gpa.UniformTrips(64),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, &gpa.Options{Workload: wl, Seed: 9, SimSMs: 1}
}

func TestLoadKernelAsmAutoEntry(t *testing.T) {
	k, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{GridX: 1, BlockX: 32})
	if err != nil {
		t.Fatal(err)
	}
	if k.Launch.Entry != "vecscale" {
		t.Errorf("auto entry = %q", k.Launch.Entry)
	}
	if _, err := gpa.LoadKernelAsm(apiKernelSrc, gpa.Launch{Entry: "missing"}); err == nil {
		t.Error("unknown entry must fail")
	}
	if _, err := gpa.LoadKernelAsm("garbage", gpa.Launch{}); err == nil {
		t.Error("bad assembly must fail")
	}
}

func TestMeasureAndAdvise(t *testing.T) {
	k, opts := apiKernel(t)
	cycles, err := k.Measure(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	report, err := k.Advise(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Advice.Entries) == 0 {
		t.Fatal("no advice")
	}
	text := report.String()
	if !strings.Contains(text, "GPA performance report for kernel vecscale") {
		t.Errorf("report header missing:\n%s", text)
	}
	if !strings.Contains(text, "vecscale.cu") {
		t.Errorf("report lacks source attribution:\n%s", text)
	}
	if top := report.Top(2); len(top) != 2 {
		t.Errorf("Top(2) = %d entries", len(top))
	}
}

func TestBinaryRoundTripThroughAPI(t *testing.T) {
	k, opts := apiKernel(t)
	blob, err := k.SaveBinary()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := gpa.LoadKernelBinary(blob, k.Launch)
	if err != nil {
		t.Fatal(err)
	}
	// The binary round trip drops label tables, so bind workloads by
	// running the original's profile against the unpacked module: a
	// plain Measure with default workload must still run.
	noWL := *opts
	noWL.Workload = nil
	cycles, err := k2.Measure(context.Background(), &noWL)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("unpacked kernel did not run")
	}
	if _, err := gpa.LoadKernelBinary([]byte("junk"), k.Launch); err == nil {
		t.Error("junk binary must fail")
	}
}

func TestProfileThenOfflineAdvise(t *testing.T) {
	k, opts := apiKernel(t)
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalSamples == 0 || prof.Cycles == 0 {
		t.Fatalf("empty profile: %+v", prof)
	}
	report, err := k.AdviseFromProfile(context.Background(), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Profile != prof {
		t.Error("report should reference the given profile")
	}
	if len(report.Advice.Entries) == 0 {
		t.Error("offline advise produced no entries")
	}
}

func TestStructureAccess(t *testing.T) {
	k, _ := apiKernel(t)
	st, err := k.Structure()
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Func("vecscale")
	if fs == nil {
		t.Fatal("no structure for vecscale")
	}
	if len(fs.CFG.Loops()) != 1 {
		t.Errorf("loops = %d, want 1", len(fs.CFG.Loops()))
	}
}

func TestV100Defaults(t *testing.T) {
	g := gpa.V100()
	if g.NumSMs != 80 || g.SchedulersPerSM != 4 {
		t.Errorf("V100 geometry: %+v", g)
	}
}
