package gpa

import (
	"context"
	"runtime/debug"
	"testing"
)

// perfTestSrc is a small but non-trivial kernel for serving-path
// performance pins.
const perfTestSrc = `
.func pk global
.line pk.cu 1
	MOV R0, 0x0 {S:2}
LOOP:
	LDG.E.32 R4, [R2] {S:1, W:0}
	IADD R5, R4, 0x1 {S:4, Q:0}
	IADD R0, R0, 0x1 {S:4}
	ISETP P0, R0, 0x10 {S:4}
BR0:	@P0 BRA LOOP {S:5}
	EXIT
`

// TestWarmEngineDoAllocationFree pins the serving hot path: once a
// job's result is cached, Engine.Do must resolve it without a single
// heap allocation — request construction, digest, cache lookup, and
// result materialization all reuse prebuilt state.
func TestWarmEngineDoAllocationFree(t *testing.T) {
	k, err := LoadKernelAsm(perfTestSrc, Launch{Entry: "pk", GridX: 4, BlockX: 128, RegsPerThread: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng := NewEngine(&EngineOptions{Workers: 1})
	for _, kind := range []JobKind{JobMeasure, JobProfile, JobAdvise} {
		job := Job{Kind: kind, Kernel: k, Options: &Options{SimSMs: 1}}
		if r := eng.Do(ctx, job); r.Err != nil {
			t.Fatalf("cold Do(%v): %v", kind, r.Err)
		}
		// A GC inside the window would make pool behavior (irrelevant
		// on the hit path, but cheap insurance) and the measurement
		// itself noisier.
		gcOff := debug.SetGCPercent(-1)
		avg := testing.AllocsPerRun(100, func() {
			r := eng.Do(ctx, job)
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if !r.Cached {
				t.Fatal("expected a cache hit")
			}
		})
		debug.SetGCPercent(gcOff)
		if avg != 0 {
			t.Errorf("warm Engine.Do(%v) allocates %.2f objects/op, want 0", kind, avg)
		}
	}
}

func BenchmarkWarmEngineDo(b *testing.B) {
	k, err := LoadKernelAsm(perfTestSrc, Launch{Entry: "pk", GridX: 4, BlockX: 128, RegsPerThread: 16})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	eng := NewEngine(&EngineOptions{Workers: 1})
	job := Job{Kind: JobAdvise, Kernel: k, Options: &Options{SimSMs: 1}}
	if r := eng.Do(ctx, job); r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := eng.Do(ctx, job); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
