package gpa_test

import (
	"context"
	"testing"

	"gpa"
	"gpa/internal/profiler"
)

// TestCrossArchDeterminism runs the same kernel on every registered
// architecture, twice per architecture plus once with parallel SM
// simulation, and asserts the rendered reports are byte-identical: the
// determinism contract PR 1 established for parallelism holds per
// architecture.
func TestCrossArchDeterminism(t *testing.T) {
	for _, g := range gpa.GPUs() {
		g := g
		t.Run(gpa.GPUName(g), func(t *testing.T) {
			render := func(parallelism int) string {
				k, opts := apiKernel(t)
				opts.GPU = g
				opts.SimSMs = 4
				opts.Parallelism = parallelism
				report, err := k.Advise(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s: %v", g.Name, err)
				}
				return report.String()
			}
			first := render(1)
			if first == "" {
				t.Fatal("empty report")
			}
			if again := render(1); again != first {
				t.Errorf("%s: two sequential runs differ", g.Name)
			}
			if par := render(4); par != first {
				t.Errorf("%s: parallel SM run differs from sequential", g.Name)
			}
		})
	}
}

// TestCrossArchCyclesDiffer asserts the architecture actually reaches
// the simulator: the same kernel must not take the same number of
// cycles on a V100 and a T4 (different memory latencies and occupancy
// limits).
func TestCrossArchCyclesDiffer(t *testing.T) {
	measure := func(name string) int64 {
		gpu, err := gpa.LookupGPU(name)
		if err != nil {
			t.Fatal(err)
		}
		k, opts := apiKernel(t)
		opts.GPU = gpu
		cycles, err := k.Measure(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	v100, t4 := measure("v100"), measure("t4")
	if v100 == t4 {
		t.Errorf("v100 and t4 simulate to identical cycle counts (%d): the GPU model is not plumbed through", v100)
	}
}

// TestProfileCarriesArchitecture pins the offline-half contract: a
// profile collected on a non-default architecture records its model,
// survives the JSON round trip, and AdviseFromProfile analyzes it with
// that model's limits unless the caller overrides.
func TestProfileCarriesArchitecture(t *testing.T) {
	t4, err := gpa.LookupGPU("t4")
	if err != nil {
		t.Fatal(err)
	}
	k, opts := apiKernel(t)
	opts.GPU = t4
	prof, err := k.Profile(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prof.GPU != "t4" {
		t.Fatalf("profile GPU = %q, want t4", prof.GPU)
	}
	path := t.TempDir() + "/profile.json"
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := profiler.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report, err := k.AdviseFromProfile(context.Background(), loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Context.GPU.SM != 75 {
		t.Errorf("offline analysis used SM %d, want the profile's 75", report.Context.GPU.SM)
	}
	// The default model stays unrecorded so default profiles keep their
	// digest across revisions.
	k2, opts2 := apiKernel(t)
	defProf, err := k2.Profile(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if defProf.GPU != "" {
		t.Errorf("default-arch profile records GPU %q, want empty", defProf.GPU)
	}
	defReport, err := k2.AdviseFromProfile(context.Background(), defProf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if defReport.Context.GPU.SM != 70 {
		t.Errorf("default offline analysis used SM %d, want 70", defReport.Context.GPU.SM)
	}
}

func TestGPUsAndNames(t *testing.T) {
	gpus := gpa.GPUs()
	if len(gpus) < 3 {
		t.Fatalf("GPUs() = %d models, want >= 3", len(gpus))
	}
	for _, g := range gpus {
		name := gpa.GPUName(g)
		back, err := gpa.LookupGPU(name)
		if err != nil {
			t.Errorf("LookupGPU(GPUName(%s)=%q): %v", g.Name, name, err)
			continue
		}
		if back.SM != g.SM {
			t.Errorf("LookupGPU(%q).SM = %d, want %d", name, back.SM, g.SM)
		}
	}
	if _, err := gpa.LookupGPU("h100"); err == nil {
		t.Error("LookupGPU of an unregistered model must fail")
	}
}
